#include "tools/aurora_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string_view>

namespace aurora::lint {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------
// Comments and literals are the only places C++ lexing gets subtle; everything
// else the rules need is identifiers and single-character punctuation. Multi-
// character operators are deliberately emitted as single chars: `>>` closing
// two template argument lists then balances naturally, and `->` shows up as
// `-` `>` which the member-access checks account for.

enum class Tk { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  Tk kind;
  std::string text;
  int line;
  bool in_directive;  // part of a preprocessor directive (incl. continuations)
};

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

std::vector<Token> Tokenize(const std::string& src) {
  std::vector<Token> out;
  int line = 1;
  bool in_directive = false;
  bool at_line_start = true;  // only whitespace seen since the last newline
  size_t i = 0;
  const size_t n = src.size();
  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      // A directive ends at a newline unless escaped with a backslash.
      if (in_directive) {
        size_t j = i;
        while (j > 0 && (src[j - 1] == ' ' || src[j - 1] == '\t')) j--;
        if (j == 0 || src[j - 1] != '\\') in_directive = false;
      }
      line++;
      at_line_start = true;
      i++;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      i++;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') i++;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') line++;
        i++;
      }
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    if (c == '#' && at_line_start) {
      in_directive = true;
      out.push_back({Tk::kPunct, "#", line, true});
      at_line_start = false;
      i++;
      continue;
    }
    at_line_start = false;
    // Raw string literal: R"delim( ... )delim"
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      size_t d0 = i + 2;
      size_t dp = d0;
      while (dp < n && src[dp] != '(') dp++;
      std::string close = ")" + src.substr(d0, dp - d0) + "\"";
      size_t end = src.find(close, dp);
      end = (end == std::string::npos) ? n : end + close.size();
      int start_line = line;
      for (size_t j = i; j < end; j++) {
        if (src[j] == '\n') line++;
      }
      out.push_back({Tk::kString, src.substr(i, end - i), start_line, in_directive});
      i = end;
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      size_t start = i++;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) i++;
        if (src[i] == '\n') line++;  // unterminated literal; keep line counts sane
        i++;
      }
      if (i < n) i++;
      out.push_back({quote == '"' ? Tk::kString : Tk::kChar, src.substr(start, i - start), line,
                     in_directive});
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(src[i])) i++;
      out.push_back({Tk::kIdent, src.substr(start, i - start), line, in_directive});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && (IsIdentChar(src[i]) || src[i] == '.' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E')))) {
        i++;
      }
      out.push_back({Tk::kNumber, src.substr(start, i - start), line, in_directive});
      continue;
    }
    out.push_back({Tk::kPunct, std::string(1, c), line, in_directive});
    i++;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppressions: `// aurora-lint: allow(rule[, rule...])` on the finding's line
// ---------------------------------------------------------------------------

std::map<int, std::set<std::string>> CollectSuppressions(const std::string& src) {
  std::map<int, std::set<std::string>> out;
  std::istringstream in(src);
  std::string text;
  int line = 0;
  while (std::getline(in, text)) {
    line++;
    size_t pos = text.find("aurora-lint: allow(");
    if (pos == std::string::npos) continue;
    size_t open = text.find('(', pos);
    size_t close = text.find(')', open);
    if (open == std::string::npos || close == std::string::npos) continue;
    std::string args = text.substr(open + 1, close - open - 1);
    std::istringstream as(args);
    std::string one;
    while (std::getline(as, one, ',')) {
      size_t b = one.find_first_not_of(" \t");
      size_t e = one.find_last_not_of(" \t");
      if (b != std::string::npos) out[line].insert(one.substr(b, e - b + 1));
    }
  }
  return out;
}

bool Suppressed(const std::map<int, std::set<std::string>>& sup, int line,
                const std::string& rule) {
  auto it = sup.find(line);
  if (it == sup.end()) return false;
  const auto& s = it->second;
  if (s.count("all") || s.count(rule)) return true;
  size_t slash = rule.find('/');
  return s.count(rule.substr(0, slash)) > 0 ||  // family name
         (slash != std::string::npos && s.count(rule.substr(slash + 1)) > 0);
}

// ---------------------------------------------------------------------------
// Shared token helpers
// ---------------------------------------------------------------------------

bool IsIdent(const Token& t, std::string_view s) { return t.kind == Tk::kIdent && t.text == s; }
bool IsPunct(const Token& t, char c) { return t.kind == Tk::kPunct && t.text[0] == c; }

// Skips a balanced <...> starting at tokens[i] (which must be '<'); returns
// the index one past the matching '>', or `i` if the angle run never closes
// before a hard boundary (`;` or `{`), which means it was a comparison.
size_t SkipAngles(const std::vector<Token>& toks, size_t i) {
  size_t depth = 0;
  for (size_t j = i; j < toks.size(); j++) {
    if (IsPunct(toks[j], '<')) depth++;
    if (IsPunct(toks[j], '>')) {
      depth--;
      if (depth == 0) return j + 1;
    }
    if (IsPunct(toks[j], ';') || IsPunct(toks[j], '{')) break;
  }
  return i;
}

// ---------------------------------------------------------------------------
// Rule: error-propagation
// ---------------------------------------------------------------------------

// Scope kinds for the brace stack. Declarations are only linted at namespace
// or class scope; everything under a function body (or an initializer, enum,
// lambda, ...) is skipped.
enum class Scope { kNamespace, kClass, kFunction, kOther };

// Classifies the '{' at tokens[brace] using the tokens since the last hard
// boundary (';', '{', '}').
Scope ClassifyBrace(const std::vector<Token>& toks, size_t brace, Scope current) {
  if (current == Scope::kFunction || current == Scope::kOther) return Scope::kOther;
  size_t begin = 0;
  for (size_t j = brace; j > 0; j--) {
    const Token& t = toks[j - 1];
    if (IsPunct(t, ';') || IsPunct(t, '{') || IsPunct(t, '}')) {
      begin = j;
      break;
    }
  }
  bool has_paren = false, has_class = false, has_namespace = false, has_enum = false,
       has_assign = false;
  for (size_t j = begin; j < brace; j++) {
    const Token& t = toks[j];
    if (t.in_directive) continue;
    if (IsPunct(t, '(')) has_paren = true;
    if (IsPunct(t, '=')) has_assign = true;
    if (IsIdent(t, "class") || IsIdent(t, "struct") || IsIdent(t, "union")) has_class = true;
    if (IsIdent(t, "namespace")) has_namespace = true;
    if (IsIdent(t, "enum")) has_enum = true;
  }
  if (has_namespace) return Scope::kNamespace;
  if (has_enum) return Scope::kOther;
  const Token* prev = brace > 0 ? &toks[brace - 1] : nullptr;
  bool function_tail =
      prev != nullptr &&
      (IsPunct(*prev, ')') || IsIdent(*prev, "override") || IsIdent(*prev, "final") ||
       IsIdent(*prev, "const") || IsIdent(*prev, "noexcept") || IsIdent(*prev, "try"));
  // `template <class T> Status Foo(T) {` contains the `class` keyword but is a
  // function definition; the `)`-shaped tail wins.
  if (has_class && !function_tail) return Scope::kClass;
  if (function_tail || has_paren) return Scope::kFunction;
  if (has_assign) return Scope::kOther;
  return Scope::kOther;
}

// Walks back from the return-type token over declaration specifiers and
// attributes, reporting whether a [[nodiscard]] attribute is present.
bool HasNodiscardBefore(const std::vector<Token>& toks, size_t type_tok) {
  static const std::set<std::string> kSpecifiers = {"virtual",  "static", "inline", "constexpr",
                                                    "explicit", "friend", "nodiscard"};
  for (size_t j = type_tok; j > 0; j--) {
    const Token& t = toks[j - 1];
    if (t.in_directive) break;
    if (t.kind == Tk::kIdent) {
      if (t.text == "nodiscard") return true;
      if (!kSpecifiers.count(t.text)) break;
      continue;
    }
    if (IsPunct(t, '[') || IsPunct(t, ']')) continue;
    break;
  }
  return false;
}

void CheckErrorPropagation(const std::string& path, const std::vector<Token>& toks,
                           std::vector<Finding>* out) {
  const bool is_header = path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
  std::vector<Scope> scopes;
  auto decl_scope = [&] {
    return scopes.empty() || scopes.back() == Scope::kNamespace || scopes.back() == Scope::kClass;
  };
  for (size_t i = 0; i < toks.size(); i++) {
    const Token& t = toks[i];
    if (IsPunct(t, '{') && !t.in_directive) {
      scopes.push_back(ClassifyBrace(toks, i, scopes.empty() ? Scope::kNamespace : scopes.back()));
      continue;
    }
    if (IsPunct(t, '}') && !t.in_directive) {
      if (!scopes.empty()) scopes.pop_back();
      continue;
    }
    if (t.in_directive) continue;

    // nodiscard-type: `class Status {` / `class Result {` definitions must be
    // [[nodiscard]] so by-value returns warn even without per-API attributes.
    if ((IsIdent(t, "class") || IsIdent(t, "struct")) && decl_scope()) {
      size_t j = i + 1;
      bool nodiscard = false;
      while (j < toks.size() && (IsPunct(toks[j], '[') || IsPunct(toks[j], ']') ||
                                 (toks[j].kind == Tk::kIdent && toks[j].text == "nodiscard") ||
                                 IsIdent(toks[j], "alignas"))) {
        if (IsIdent(toks[j], "nodiscard")) nodiscard = true;
        j++;
      }
      if (j < toks.size() && toks[j].kind == Tk::kIdent &&
          (toks[j].text == "Status" || toks[j].text == "Result")) {
        size_t k = j + 1;
        while (k < toks.size() && IsIdent(toks[k], "final")) k++;
        if (k < toks.size() && IsPunct(toks[k], '{') && !nodiscard) {
          out->push_back({path, toks[j].line, kRuleNodiscardType,
                          "class " + toks[j].text + " must be declared [[nodiscard]]"});
        }
      }
    }

    // nodiscard-api: header-declared functions returning Status / Result<T>
    // must carry [[nodiscard]].
    if (is_header && t.kind == Tk::kIdent && (t.text == "Status" || t.text == "Result") &&
        decl_scope()) {
      // A `::`-qualified mention (Foo::Status) is only our type when the
      // qualifier is the aurora namespace. A single ':' (access specifier)
      // is not qualification.
      if (i >= 2 && IsPunct(toks[i - 1], ':') && IsPunct(toks[i - 2], ':') &&
          !(i >= 3 && IsIdent(toks[i - 3], "aurora"))) {
        continue;
      }
      size_t j = i + 1;
      if (t.text == "Result") {
        if (j >= toks.size() || !IsPunct(toks[j], '<')) continue;
        size_t after = SkipAngles(toks, j);
        if (after == j) continue;
        j = after;
      }
      if (j + 1 < toks.size() && toks[j].kind == Tk::kIdent && IsPunct(toks[j + 1], '(') &&
          toks[j].text != "operator") {
        if (!HasNodiscardBefore(toks, i)) {
          out->push_back({path, t.line, kRuleNodiscardApi,
                          "function '" + toks[j].text + "' returns " + t.text +
                              " but is not declared [[nodiscard]]"});
        }
      }
    }

    // void-cast: `(void)` applied to an expression containing a call. The
    // audited AURORA_IGNORE_STATUS macro is the only sanctioned discard.
    if (IsPunct(t, '(') && i + 2 < toks.size() && IsIdent(toks[i + 1], "void") &&
        IsPunct(toks[i + 2], ')')) {
      // `Foo(void)` is a parameter list, not a cast.
      bool preceded_by_name = i > 0 && (toks[i - 1].kind == Tk::kIdent);
      if (!preceded_by_name) {
        for (size_t j = i + 3; j < toks.size(); j++) {
          const Token& u = toks[j];
          // Any '(' before the statement ends means the discarded expression
          // makes a call; a ')' first means we were inside a macro argument.
          if (IsPunct(u, ';') || IsPunct(u, ')')) break;
          if (IsPunct(u, '(')) {
            out->push_back({path, t.line, kRuleVoidCast,
                            "bare (void) cast of a call result; use "
                            "AURORA_IGNORE_STATUS(expr, \"reason\") instead"});
            break;
          }
        }
      }
    }
    // static_cast<void>(...) of a call is the same discard in disguise.
    if (IsIdent(t, "static_cast") && i + 4 < toks.size() && IsPunct(toks[i + 1], '<') &&
        IsIdent(toks[i + 2], "void") && IsPunct(toks[i + 3], '>') && IsPunct(toks[i + 4], '(')) {
      int depth = 1;
      for (size_t j = i + 5; j < toks.size() && depth > 0; j++) {
        if (IsPunct(toks[j], ')')) {
          depth--;
          continue;
        }
        if (IsPunct(toks[j], '(')) {
          out->push_back({path, t.line, kRuleVoidCast,
                          "static_cast<void> of a call result; use "
                          "AURORA_IGNORE_STATUS(expr, \"reason\") instead"});
          break;
        }
      }
    }

    // ignore-reason: the audit macro requires a non-empty string literal.
    if (IsIdent(t, "AURORA_IGNORE_STATUS") && i + 1 < toks.size() && IsPunct(toks[i + 1], '(')) {
      int depth = 1;
      size_t reason_tok = 0;
      for (size_t j = i + 2; j < toks.size() && depth > 0; j++) {
        if (IsPunct(toks[j], '(')) depth++;
        if (IsPunct(toks[j], ')')) depth--;
        if (depth == 1 && IsPunct(toks[j], ',')) reason_tok = j + 1;
      }
      if (reason_tok == 0 || reason_tok >= toks.size()) {
        out->push_back({path, t.line, kRuleIgnoreReason,
                        "AURORA_IGNORE_STATUS requires a reason argument"});
      } else if (toks[reason_tok].kind != Tk::kString || toks[reason_tok].text.size() <= 2) {
        out->push_back({path, t.line, kRuleIgnoreReason,
                        "AURORA_IGNORE_STATUS reason must be a non-empty string literal"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: determinism
// ---------------------------------------------------------------------------

void CheckDeterminism(const std::string& path, const std::vector<Token>& toks,
                      std::vector<Finding>* out) {
  static const std::set<std::string> kWallClockIdents = {"system_clock", "steady_clock",
                                                         "high_resolution_clock"};
  // libc `clock()` is deliberately absent: BlockDevice exposes a SimClock
  // accessor of that name, and CPU-time reads are caught by review.
  static const std::set<std::string> kWallClockCalls = {"time", "clock_gettime", "gettimeofday",
                                                        "localtime", "gmtime"};
  static const std::set<std::string> kRandomCalls = {"rand", "srand", "drand48", "srandom",
                                                     "random"};
  static const std::set<std::string> kTimestamps = {"__DATE__", "__TIME__", "__TIMESTAMP__"};
  for (size_t i = 0; i < toks.size(); i++) {
    const Token& t = toks[i];
    if (t.kind != Tk::kIdent) continue;
    if (kTimestamps.count(t.text)) {
      out->push_back({path, t.line, kRuleBuildTimestamp,
                      t.text + " bakes the build time into the binary; output must be "
                               "reproducible"});
      continue;
    }
    if (kWallClockIdents.count(t.text)) {
      out->push_back({path, t.line, kRuleWallClock,
                      "std::chrono::" + t.text + " is wall-clock time; use SimClock so one "
                                                 "seed yields one schedule"});
      continue;
    }
    if (t.text == "random_device") {
      out->push_back({path, t.line, kRuleUnseededRandom,
                      "std::random_device is unseedable; draw from aurora::Rng instead"});
      continue;
    }
    // Call-shaped bans: the identifier must start the call (member accesses
    // like `watch.time()` are a different function and stay legal; `->` is
    // tokenized as `-` `>` so the `>` check covers it).
    bool is_call = i + 1 < toks.size() && IsPunct(toks[i + 1], '(');
    bool member_access =
        i > 0 && (IsPunct(toks[i - 1], '.') || IsPunct(toks[i - 1], '>'));
    if (is_call && !member_access) {
      if (kWallClockCalls.count(t.text)) {
        out->push_back({path, t.line, kRuleWallClock,
                        t.text + "() reads host time; simulated time must flow through "
                                 "SimClock"});
      } else if (kRandomCalls.count(t.text)) {
        out->push_back({path, t.line, kRuleUnseededRandom,
                        t.text + "() breaks the one-seed-one-schedule contract; use "
                                 "aurora::Rng"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: hygiene
// ---------------------------------------------------------------------------

void CheckOutputHygiene(const std::string& path, const std::vector<Token>& toks,
                        const Options& opts, std::vector<Finding>* out) {
  for (const std::string& exempt : opts.output_exempt_paths) {
    if (path.find(exempt) != std::string::npos) return;
  }
  for (size_t i = 0; i < toks.size(); i++) {
    const Token& t = toks[i];
    if (t.kind != Tk::kIdent) continue;
    bool member_access = i > 0 && (IsPunct(toks[i - 1], '.') || IsPunct(toks[i - 1], '>'));
    if (t.text == "cout" && !member_access) {
      out->push_back({path, t.line, kRuleStdoutInLibrary,
                      "std::cout in library code; report through src/obs or return data to "
                      "the caller"});
      continue;
    }
    bool is_call = i + 1 < toks.size() && IsPunct(toks[i + 1], '(');
    if (!is_call || member_access) continue;
    if (t.text == "printf" || t.text == "puts" || t.text == "putchar") {
      out->push_back({path, t.line, kRuleStdoutInLibrary,
                      t.text + "() writes to stdout from library code; report through "
                               "src/obs instead"});
    } else if (t.text == "fprintf" && i + 2 < toks.size() && IsIdent(toks[i + 2], "stdout")) {
      out->push_back({path, t.line, kRuleStdoutInLibrary,
                      "fprintf(stdout, ...) in library code; report through src/obs "
                      "instead"});
    }
  }
}

void CheckIncludeGuard(const std::string& path, const std::string& src,
                       std::vector<Finding>* out) {
  if (path.size() <= 2 || path.compare(path.size() - 2, 2, ".h") != 0) return;
  std::istringstream in(src);
  std::string text;
  int line = 0;
  bool in_block_comment = false;
  std::string ifndef_macro;
  int state = 0;  // 0 = want #ifndef/#pragma once, 1 = want matching #define, 2 = ok
  while (std::getline(in, text) && state < 2) {
    line++;
    std::string s = text;
    if (in_block_comment) {
      size_t end = s.find("*/");
      if (end == std::string::npos) continue;
      in_block_comment = false;
      s = s.substr(end + 2);
    }
    size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    s = s.substr(b);
    if (s.rfind("//", 0) == 0) continue;
    if (s.rfind("/*", 0) == 0) {
      if (s.find("*/", 2) == std::string::npos) in_block_comment = true;
      continue;
    }
    std::istringstream ls(s);
    std::string tok1, tok2;
    ls >> tok1 >> tok2;
    if (state == 0) {
      if (tok1 == "#pragma" && tok2 == "once") return;
      if (tok1 == "#ifndef") {
        ifndef_macro = tok2;
        state = 1;
        continue;
      }
      break;  // first real line is not a guard
    }
    if (state == 1) {
      if (tok1 == "#define" && tok2 == ifndef_macro) {
        state = 2;
        continue;
      }
      break;
    }
  }
  if (state != 2) {
    out->push_back({path, 1, kRuleIncludeGuard,
                    "header has no include guard (#ifndef/#define pair or #pragma once)"});
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

std::string Finding::ToString() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

void Options::AddDefaultExemptions() {
  output_exempt_paths.push_back("src/obs/");
  output_exempt_paths.push_back("src/core/cli.cc");
}

bool Options::FamilyEnabled(const std::string& family) const {
  if (families.empty()) return true;
  return std::find(families.begin(), families.end(), family) != families.end();
}

std::vector<Finding> LintFile(const std::string& path, const std::string& contents,
                              const Options& opts) {
  std::vector<Finding> raw;
  std::vector<Token> toks = Tokenize(contents);
  if (opts.FamilyEnabled("error-propagation")) CheckErrorPropagation(path, toks, &raw);
  if (opts.FamilyEnabled("determinism")) CheckDeterminism(path, toks, &raw);
  if (opts.FamilyEnabled("hygiene")) {
    CheckOutputHygiene(path, toks, opts, &raw);
    CheckIncludeGuard(path, contents, &raw);
  }
  auto sup = CollectSuppressions(contents);
  std::vector<Finding> out;
  for (Finding& f : raw) {
    if (!Suppressed(sup, f.line, f.rule)) out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return out;
}

std::vector<Finding> LintPath(const std::string& path, const Options& opts) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {{path, 0, "error", "cannot read file"}};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return LintFile(path, ss.str(), opts);
}

std::vector<Finding> LintTree(const std::string& root, const Options& opts) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  if (fs::is_directory(root, ec)) {
    for (auto it = fs::recursive_directory_iterator(root, ec);
         it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file(ec)) continue;
      std::string p = it->path().generic_string();
      if (p.size() > 2 && (p.compare(p.size() - 2, 2, ".h") == 0 ||
                           p.compare(p.size() - 3, 3, ".cc") == 0)) {
        files.push_back(p);
      }
    }
  } else {
    files.push_back(root);
  }
  std::sort(files.begin(), files.end());
  std::vector<Finding> out;
  for (const std::string& f : files) {
    std::vector<Finding> one = LintPath(f, opts);
    out.insert(out.end(), one.begin(), one.end());
  }
  return out;
}

}  // namespace aurora::lint
