// aurora_lint — project-specific static analysis for the Aurora tree.
//
// A deliberately small, dependency-free pass (a hand-rolled tokenizer, no
// libclang) that enforces the three contracts Aurora's correctness story
// rests on:
//
//   error-propagation  Status / Result<T> must be [[nodiscard]]; every
//                      header-declared function returning them must carry
//                      the attribute; discarding a call result requires
//                      AURORA_IGNORE_STATUS(expr, "reason") — bare (void)
//                      casts of calls are rejected.
//   determinism        src/ must not reach for wall clocks or unseeded
//                      randomness (std::chrono::{system,steady,
//                      high_resolution}_clock, time(), rand(), srand(),
//                      random_device, gettimeofday, clock_gettime,
//                      __DATE__/__TIME__). Simulated time flows through
//                      SimClock, randomness through aurora::Rng.
//   hygiene            no std::cout / printf / fprintf(stdout, ...) in
//                      library code (src/obs and the CLI are exempt), and
//                      every header carries an include guard.
//
// A finding on a line can be suppressed with a trailing comment:
//   // aurora-lint: allow(<rule-or-family>)
#ifndef TOOLS_AURORA_LINT_LINT_H_
#define TOOLS_AURORA_LINT_LINT_H_

#include <string>
#include <vector>

namespace aurora::lint {

// Stable rule identifiers, grouped by family.
// error-propagation family:
inline constexpr char kRuleNodiscardType[] = "error-propagation/nodiscard-type";
inline constexpr char kRuleNodiscardApi[] = "error-propagation/nodiscard-api";
inline constexpr char kRuleVoidCast[] = "error-propagation/void-cast";
inline constexpr char kRuleIgnoreReason[] = "error-propagation/ignore-reason";
// determinism family:
inline constexpr char kRuleWallClock[] = "determinism/wall-clock";
inline constexpr char kRuleUnseededRandom[] = "determinism/unseeded-random";
inline constexpr char kRuleBuildTimestamp[] = "determinism/build-timestamp";
// hygiene family:
inline constexpr char kRuleStdoutInLibrary[] = "hygiene/stdout-in-library";
inline constexpr char kRuleIncludeGuard[] = "hygiene/include-guard";

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;     // one of the kRule* identifiers above
  std::string message;  // human-readable description

  [[nodiscard]] std::string ToString() const;
};

struct Options {
  // Rule families to run; empty means all. Valid entries: "error-propagation",
  // "determinism", "hygiene".
  std::vector<std::string> families;
  // Path substrings exempt from the stdout-in-library rule. Callers that want
  // the defaults (src/obs/, src/core/cli.cc) should call AddDefaultExemptions.
  std::vector<std::string> output_exempt_paths;

  void AddDefaultExemptions();
  [[nodiscard]] bool FamilyEnabled(const std::string& family) const;
};

// Lints one file whose contents are already in memory. `path` is used for
// reporting and for path-based rule decisions (headers vs sources, output
// exemptions).
[[nodiscard]] std::vector<Finding> LintFile(const std::string& path,
                                            const std::string& contents,
                                            const Options& opts);

// Reads `path` from disk and lints it. Returns a finding (not an error) if
// the file cannot be read, so tree runs keep going.
[[nodiscard]] std::vector<Finding> LintPath(const std::string& path,
                                            const Options& opts);

// Recursively lints every *.h / *.cc under `root` (or the single file if
// `root` is one), sorted for deterministic output.
[[nodiscard]] std::vector<Finding> LintTree(const std::string& root,
                                            const Options& opts);

}  // namespace aurora::lint

#endif  // TOOLS_AURORA_LINT_LINT_H_
