// aurora_lint CLI. Exit code 0 = clean, 1 = findings, 2 = usage error.
//
//   aurora_lint [options] <file-or-dir>...
//     --rules=<family>[,<family>]  run only the listed rule families
//                                  (error-propagation, determinism, hygiene)
//     --allow-output=<substr>      extra path exempt from hygiene/stdout rule
//     --no-default-exemptions      drop the built-in src/obs + CLI exemptions
//     -q, --quiet                  suppress per-finding lines
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "tools/aurora_lint/lint.h"

int main(int argc, char** argv) {
  aurora::lint::Options opts;
  std::vector<std::string> roots;
  bool quiet = false;
  bool default_exemptions = true;
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg.rfind("--rules=", 0) == 0) {
      std::istringstream ss(arg.substr(8));
      std::string fam;
      while (std::getline(ss, fam, ',')) {
        if (fam != "error-propagation" && fam != "determinism" && fam != "hygiene") {
          std::fprintf(stderr, "aurora_lint: unknown rule family '%s'\n", fam.c_str());
          return 2;
        }
        opts.families.push_back(fam);
      }
    } else if (arg.rfind("--allow-output=", 0) == 0) {
      opts.output_exempt_paths.push_back(arg.substr(15));
    } else if (arg == "--no-default-exemptions") {
      default_exemptions = false;
    } else if (arg == "-q" || arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("-", 0) == 0) {
      std::fprintf(stderr, "aurora_lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr,
                 "usage: aurora_lint [--rules=...] [--allow-output=...] <file-or-dir>...\n");
    return 2;
  }
  if (default_exemptions) opts.AddDefaultExemptions();

  size_t total = 0;
  for (const std::string& root : roots) {
    for (const aurora::lint::Finding& f : aurora::lint::LintTree(root, opts)) {
      total++;
      if (!quiet) std::fprintf(stderr, "%s\n", f.ToString().c_str());
    }
  }
  if (total > 0) {
    std::fprintf(stderr, "aurora_lint: %zu finding(s)\n", total);
    return 1;
  }
  return 0;
}
