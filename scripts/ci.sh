#!/usr/bin/env bash
# CI entry point: build the plain and ASan+UBSan configurations and run the
# full test suite under both. Usage: scripts/ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${1:-$(nproc)}"

for preset in default asan; do
  echo "=== configure/build/test: ${preset} ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}"

  # The lane-scaling contract is load-bearing (byte-identity + monotone
  # makespan); run it by name so a filter typo elsewhere can't silently
  # drop it from the suite.
  build_dir="build"
  [[ "${preset}" == "asan" ]] && build_dir="build-asan"
  "${build_dir}/tests/lane_scaling_test" >/dev/null

  # So is the fault matrix (end-to-end integrity, retry masking, epoch
  # abort): run it by name too.
  "${build_dir}/tests/fault_matrix_test" >/dev/null

  # And the stop-path contract (clean epochs elide protection + shootdowns,
  # legacy vs incremental images byte-identical, cache invalidation per op).
  "${build_dir}/tests/stop_path_test" >/dev/null

  # The segment-log GC contract: compaction keeps churn space flat, never
  # changes a retained epoch, and interleaves cleanly with the scrubber.
  "${build_dir}/tests/segment_gc_test" >/dev/null

  # Error-propagation / determinism / hygiene gate: the tree must lint clean
  # and the linter must prove its own rules still fire on the fixtures.
  "${build_dir}/tools/aurora_lint/aurora_lint" src tools
  "${build_dir}/tests/lint_test" >/dev/null

  # The ablation bench must keep exporting the per-lane flush metrics and
  # the fault-handling counters; a BENCH json without them means the lane
  # accounting or the retry/abort instrumentation regressed.
  (cd "${build_dir}" && ./bench/bench_ablations >/dev/null)
  for key in flush.lane0.bytes flush.lane0.busy_time flush.lane3.bytes \
             flush.lane3.busy_time flush.lanes io.retries ckpt.epochs_aborted \
             ckpt.stop_time vm.shootdowns_elided; do
    if ! grep -q "\"${key}\"" "${build_dir}/BENCH_ablations.json"; then
      echo "CI FAIL: ${key} missing from ${build_dir}/BENCH_ablations.json" >&2
      exit 1
    fi
  done

  # The long-horizon soak: the segment log must actually reclaim whole
  # segments and hold space flat (end-of-run within 10% of the mid-run
  # steady state) across 10^4+ retained-churn epochs.
  (cd "${build_dir}" && ./bench/bench_soak >/dev/null)
  if ! grep -q '"gc.segments_reclaimed"' "${build_dir}/BENCH_soak.json"; then
    echo "CI FAIL: gc.segments_reclaimed missing from ${build_dir}/BENCH_soak.json" >&2
    exit 1
  fi
  flat=$(awk -F': ' '/"label": "segment-log end\/mid used"/{grab=1}
                     grab && /"measured"/{gsub(/,/,"",$2); print $2; exit}' \
         "${build_dir}/BENCH_soak.json")
  if [[ -z "${flat}" ]] || ! awk -v r="${flat}" 'BEGIN{exit !(r <= 1.10)}'; then
    echo "CI FAIL: segment-log soak space not flat (end/mid = ${flat:-missing})" >&2
    exit 1
  fi
done

# Best-effort clang-tidy pass over src/ using the curated .clang-tidy profile.
# The container image does not ship clang-tidy, so its absence is not a
# failure — but when present, findings are.
if command -v clang-tidy >/dev/null 2>&1; then
  echo "=== clang-tidy (best effort) ==="
  mapfile -t tidy_files < <(find src tools -name '*.cc' | sort)
  clang-tidy -p build --quiet "${tidy_files[@]}"
else
  echo "=== clang-tidy not found; skipping best-effort tidy pass ==="
fi
