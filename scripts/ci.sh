#!/usr/bin/env bash
# CI entry point: build the plain and ASan+UBSan configurations and run the
# full test suite under both. Usage: scripts/ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${1:-$(nproc)}"

for preset in default asan; do
  echo "=== configure/build/test: ${preset} ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}"
done
